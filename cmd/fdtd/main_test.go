package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fdt/internal/core"
)

// lockedBuf makes a bytes.Buffer safe to read while the daemon
// goroutine is still writing to it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL plus a shutdown func that triggers a graceful drain and
// waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, stop func() (int, string)) {
	t.Helper()
	core.DetachRunStore()
	core.ResetRunCache()
	t.Cleanup(func() {
		core.DetachRunStore()
		core.ResetRunCache()
	})

	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut lockedBuf
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, args, &out, &errOut) }()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(out.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "fdtd: listening on "); ok {
				return "http://" + strings.TrimSpace(addr), func() (int, string) {
					cancel()
					select {
					case code := <-exit:
						return code, out.String() + errOut.String()
					case <-time.After(2 * time.Minute):
						t.Fatal("daemon did not stop")
						return -1, ""
					}
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	t.Fatalf("daemon never listened; output:\n%s%s", out.String(), errOut.String())
	return "", nil
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

func await(t *testing.T, base, id string) json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch v.Status {
		case "done":
			return v.Result
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

const sweepSpec = `{"workload":"pagemine","threads":[2,4],"cores":8}`

func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base, stop := startDaemon(t, "-store", dir, "-workers", "1")

	id := submit(t, base, sweepSpec)
	first := await(t, base, id)
	if !strings.Contains(string(first), `"min_threads"`) {
		t.Fatalf("result missing min_threads: %s", first)
	}

	// Second identical submission is served from cache: zero new
	// computes.
	resp, _ := http.Get(base + "/v1/stats")
	var st1 struct {
		CacheComputes uint64 `json:"cache_computes"`
	}
	json.NewDecoder(resp.Body).Decode(&st1)
	resp.Body.Close()

	second := await(t, base, submit(t, base, sweepSpec))
	if string(first) != string(second) {
		t.Fatal("repeat submission returned different bytes")
	}
	resp, _ = http.Get(base + "/v1/stats")
	var st2 struct {
		CacheComputes uint64 `json:"cache_computes"`
		StoreAttached bool   `json:"store_attached"`
	}
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if st2.CacheComputes != st1.CacheComputes {
		t.Fatalf("repeat submission recomputed (%d -> %d)", st1.CacheComputes, st2.CacheComputes)
	}
	if !st2.StoreAttached {
		t.Fatal("store not attached")
	}

	code, logs := stop()
	if code != 0 {
		t.Fatalf("daemon exit = %d\n%s", code, logs)
	}
	if !strings.Contains(logs, "fdtd: draining") || !strings.Contains(logs, "fdtd: stopped") {
		t.Fatalf("graceful-drain log lines missing:\n%s", logs)
	}

	// Restart on the same store directory: the resubmitted sweep must
	// be all store hits — zero recomputes — with byte-identical output.
	base2, stop2 := startDaemon(t, "-store", dir, "-workers", "1")
	third := await(t, base2, submit(t, base2, sweepSpec))
	if string(first) != string(third) {
		t.Fatalf("restart broke byte-identity:\n%s\nvs\n%s", first, third)
	}
	if got := core.RunCacheComputes(); got != 0 {
		t.Fatalf("restarted daemon recomputed %d runs, want 0", got)
	}
	if code, logs := stop2(); code != 0 {
		t.Fatalf("restarted daemon exit = %d\n%s", code, logs)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-nosuch"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"stray"}, &out, &errOut); code != 2 {
		t.Errorf("stray arg exit = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-store", "/dev/null/nope"}, &out, &errOut); code != 1 {
		t.Errorf("bad store exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "open store") {
		t.Errorf("missing store error: %s", errOut.String())
	}
}

func TestDaemonSSEOverTCP(t *testing.T) {
	base, stop := startDaemon(t)
	defer stop()

	id := submit(t, base, sweepSpec)
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)
	for _, want := range []string{"event: queued", "event: running", "event: point", "event: done"} {
		if !strings.Contains(body, want) {
			t.Errorf("stream missing %q:\n%s", want, body)
		}
	}
}
