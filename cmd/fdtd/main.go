// Command fdtd is the simulation-as-a-service daemon: it serves the
// feedback-driven-threading simulator over HTTP with a bounded,
// client-fair job queue, SSE progress streaming, and a disk-persistent
// content-addressed run store shared with the CLI tools.
//
//	fdtd -addr :8080 -store /var/lib/fdt/runs
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"pagemine","threads":[2,4,8]}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -N  localhost:8080/v1/jobs/job-1/stream
//	curl -s localhost:8080/v1/stats
//
// SIGINT/SIGTERM starts a graceful drain: admission stops (503), the
// queue empties, in-flight jobs finish, then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fdt/internal/core"
	"fdt/internal/runner"
	"fdt/internal/service"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable daemon body: it returns once the listener is
// closed after a drain triggered by ctx cancellation (or exits
// non-zero on setup errors). The bound address is printed to stdout
// so callers using -addr :0 can discover the port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdtd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	storeDir := fs.String("store", "", "disk run-store directory (empty = in-memory cache only)")
	workers := fs.Int("workers", 2, "concurrent jobs")
	queueCap := fs.Int("queue", 64, "admission queue capacity (0 = unbounded)")
	parallel := fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	cacheLimit := fs.Int("cache-limit", 0, "max in-memory cached runs, evicted LRU-ish (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "max time to finish queued jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "fdtd: unexpected arguments %v\n", fs.Args())
		return 2
	}

	if *parallel > 0 {
		runner.SetWorkers(*parallel)
	}
	if *cacheLimit > 0 {
		core.SetRunCacheLimit(*cacheLimit)
	}
	if *storeDir != "" {
		st, err := core.OpenRunStore(*storeDir)
		if err != nil {
			fmt.Fprintf(stderr, "fdtd: open store: %v\n", err)
			return 1
		}
		entries, bytes := st.Len()
		fmt.Fprintf(stdout, "fdtd: store %s (%d entries, %d bytes)\n", st.Dir(), entries, bytes)
	}

	svc := service.New(service.Config{Workers: *workers, QueueCap: *queueCap})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "fdtd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "fdtd: listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: svc.Handler()}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "fdtd: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Drain first so queued jobs finish while the listener still
	// answers polls/streams, then shut the HTTP server down.
	fmt.Fprintln(stdout, "fdtd: draining")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := svc.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "fdtd: drain: %v\n", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "fdtd: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "fdtd: stopped")
	return 0
}
