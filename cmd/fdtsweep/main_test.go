package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// fdtsweep's flags live in main() and exit through os.Exit, so the
// tests re-exec the test binary as the command: TestMain intercepts
// the child before any tests run and hands os.Args to main(). Args
// are joined with the ASCII unit separator (NUL is not legal in
// environment values).
const sweepArgsEnv = "FDTSWEEP_TEST_ARGS"

func TestMain(m *testing.M) {
	if raw := os.Getenv(sweepArgsEnv); raw != "" {
		os.Args = append([]string{"fdtsweep"}, strings.Split(raw, "\x1f")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// execSweep runs fdtsweep with args in a child process and returns
// its exit code with the combined output streams.
func execSweep(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), sweepArgsEnv+"="+strings.Join(args, "\x1f"))
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("exec %v: %v", args, err)
	}
	return code, out.String(), errb.String()
}

func TestSweepBadInvocations(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec child processes")
	}
	cases := [][]string{
		{"-workload", "nosuch"},
		{"-threads", "notanumber"},
		{"-probe-iters", "-1"},
		{"-min-gain", "1.5"},
		{"-power-budget", "-1"},
		{"-freq-ladder", "notanumber"},
		{"-freq-ladder", "800,1600"}, // must be strictly descending
		{"-power-budget", "5", "-corun", "pagemine+mg"},
		{"-freq-ladder", "default", "-corun", "pagemine+mg"},
		{"-workload", "ed", "-threads", "1,2", "-power-budget", "5", "-policies", "hillclimb"},
		{"-workload", "ed", "-threads", "1,2", "-power-budget", "5", "-policies", "hybrid"},
	}
	for _, args := range cases {
		code, _, errb := execSweep(t, args...)
		if code != 2 {
			t.Errorf("fdtsweep %v = exit %d, want 2; stderr: %s", args, code, errb)
		}
	}
}

func TestSweepPowerBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated sweep in a child process")
	}
	code, out, errb := execSweep(t,
		"-workload", "ed", "-cores", "16", "-threads", "1,4",
		"-policies", "sat+bat", "-power-budget", "5.6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{
		"# ladder f2000>f1600>f1200>f800, budget 5.60",
		"freq=f", "energy=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q in:\n%s", want, out)
		}
	}
}
