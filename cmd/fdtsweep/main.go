// Command fdtsweep sweeps a workload across static thread counts and
// prints the baseline curve of the paper's per-workload figures —
// normalized execution time (and bus utilization) versus thread
// count — plus the point each feedback policy picks.
//
// Usage:
//
//	fdtsweep -workload ed
//	fdtsweep -workload pagemine -threads 1,2,4,8,16,32
//	fdtsweep -workload convert -bandwidth 2
//	fdtsweep -workload ed -parallel 1   # legacy serial (0 = GOMAXPROCS)
//	fdtsweep -workload ed -json sweep.json   # machine-readable output ("-" = stdout)
//	fdtsweep -workload ed -sampled           # steady-state fast-forward
//	fdtsweep -workload ed -sampled -verify   # sampled vs exact error table
//	fdtsweep -workload ed -cache-dir d/      # back the run cache with fdtd's disk store
//
// Sweep points are independent simulations; they fan out over a host
// worker pool and land in the process-wide run cache.
//
// With -sampled the sweep executes in sampled mode (DESIGN.md
// Section 11); adding -verify runs every point in both modes and
// prints a per-point cycle/power relative-error table with geometric
// means — the accuracy audit behind BENCH_PR6.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "ed", "workload name")
		corun      = flag.String("corun", "", "co-schedule two workloads as \"a+b\" and sweep the mapping dimension instead of thread counts")
		mapStr     = flag.String("mapping", "", "with -corun: sweep only this mapping (packed, scattered, smt; default all valid)")
		threadStr  = flag.String("threads", "", "comma-separated static thread counts (default 1..cores)")
		cores      = flag.Int("cores", 32, "cores on the simulated chip")
		bandwidth  = flag.Float64("bandwidth", 1.0, "off-chip bandwidth scale factor")
		policies   = flag.String("policies", "sat,bat,sat+bat", "feedback policies to place on the curve")
		parallel   = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cacheDir   = flag.String("cache-dir", "", "disk run-store directory shared with fdtd (warm runs are loaded, new runs persisted)")
		jsonPath   = flag.String("json", "", "write the sweep and policy runs as JSON to this file (\"-\" for stdout)")
		useSample  = flag.Bool("sampled", false, "execute sweep points in sampled mode (steady-state fast-forward)")
		sampleTol  = flag.Float64("sample-tol", 0, "sampled-mode stability tolerance (0 = default)")
		sampleWin  = flag.Int("sample-window", 0, "sampled-mode detailed-window length in iterations (0 = default)")
		verifyAcc  = flag.Bool("verify", false, "with -sampled: also run every point exactly and print the error table")
		probeIters = flag.Int("probe-iters", 0, "probe chunk length in iterations for hillclimb/hybrid policies (0 = default)")
		minGain    = flag.Float64("min-gain", 0, "fractional speedup a probed size needs to win, for hillclimb/hybrid policies (0 = default)")
		budget     = flag.Float64("power-budget", 0, "average-chip-power cap in nominal-active-core units (0 = unconstrained; implies -freq-ladder default)")
		ladderStr  = flag.String("freq-ladder", "", "P-state ladder: \"default\" or comma-separated MHz values, nominal first (empty = single-frequency machine)")
	)
	flag.Parse()
	if *probeIters < 0 {
		fmt.Fprintf(os.Stderr, "fdtsweep: -probe-iters %d, want >= 0 (0 = default)\n", *probeIters)
		os.Exit(2)
	}
	if *minGain < 0 || *minGain >= 1 {
		fmt.Fprintf(os.Stderr, "fdtsweep: -min-gain %g, want in [0, 1)\n", *minGain)
		os.Exit(2)
	}
	ladder, err := machine.ResolveDVFS(*budget, *ladderStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdtsweep:", err)
		os.Exit(2)
	}
	dvfs := *budget > 0 || !ladder.Trivial()
	pp := core.PowerParams{Budget: *budget, LockState: -1}
	runner.SetWorkers(*parallel)
	if *cacheDir != "" {
		if _, err := core.OpenRunStore(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			os.Exit(1)
		}
	}

	md := core.ExactMode()
	if *useSample {
		md = core.SampledMode()
		md.Params.Tol = *sampleTol
		md.Params.WindowIters = *sampleWin
		md.Params = md.Params.WithDefaults()
	}

	if *corun != "" {
		if dvfs {
			fmt.Fprintln(os.Stderr, "fdtsweep: -corun does not support -power-budget/-freq-ladder (per-team power attribution is not modeled)")
			os.Exit(2)
		}
		cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth)
		os.Exit(runCorunSweep(cfg, *corun, *mapStr, md, *jsonPath))
	}

	info, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "fdtsweep: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth).WithFreq(ladder)
	factory := func(m *machine.Machine) core.Workload { return info.Factory(m) }

	counts, err := parseThreads(*threadStr, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdtsweep:", err)
		os.Exit(2)
	}

	var sweep []core.RunResult
	if dvfs {
		sweep = core.SweepBudgetKeyedMode(cfg, info.Name, factory, counts, pp, md)
	} else {
		sweep = core.SweepKeyedMode(cfg, info.Name, factory, counts, md)
	}
	base := sweep[0].TotalCycles // normalize to the 1-thread run
	fmt.Printf("# %s on %d cores, %.2gx bandwidth (time normalized to %d threads)\n",
		info.Name, *cores, *bandwidth, counts[0])
	if dvfs {
		names := make([]string, len(ladder.States))
		for i, s := range ladder.States {
			names[i] = s.Name
		}
		budgetStr := "unconstrained"
		if *budget > 0 {
			budgetStr = fmt.Sprintf("%.2f", *budget)
		}
		fmt.Printf("# ladder %s, budget %s\n", strings.Join(names, ">"), budgetStr)
	}
	fmt.Printf("%8s %12s %10s %10s %10s\n", "threads", "cycles", "norm.time", "bus.util", "power")
	times := make([]uint64, len(sweep))
	for i, r := range sweep {
		times[i] = r.TotalCycles
		fmt.Printf("%8d %12d %10.3f %9.1f%% %10.2f\n",
			counts[i], r.TotalCycles,
			float64(r.TotalCycles)/float64(base),
			100*float64(r.BusBusyCycles)/float64(r.TotalCycles),
			r.AvgActiveCores)
	}
	bestIdx, bestCycles := stats.ArgMinUint(times)
	fmt.Printf("# minimum at %d threads (%d cycles)\n", counts[bestIdx], bestCycles)

	out := sweepJSON{
		Workload:   info.Name,
		Cores:      *cores,
		Bandwidth:  *bandwidth,
		Threads:    counts,
		Sweep:      sweep,
		MinThreads: counts[bestIdx],
	}

	if *useSample && *verifyAcc {
		var exact []core.RunResult
		if dvfs {
			exact = core.SweepBudgetKeyedMode(cfg, info.Name, factory, counts, pp, core.ExactMode())
		} else {
			exact = core.SweepKeyed(cfg, info.Name, factory, counts)
		}
		fmt.Printf("# sampled-vs-exact verification\n")
		fmt.Printf("%8s %12s %12s %9s %8s %8s %9s %8s\n",
			"threads", "exact.cyc", "sampled.cyc", "cyc.err", "exact.pw", "smpl.pw", "pw.err", "skipped")
		var cycErrs, pwErrs []float64
		var points []verifyPoint
		for i, ex := range exact {
			sp := sweep[i]
			cycErr := relErr(float64(sp.TotalCycles), float64(ex.TotalCycles))
			pwErr := relErr(sp.AvgActiveCores, ex.AvgActiveCores)
			cycErrs = append(cycErrs, 1+absF(cycErr))
			pwErrs = append(pwErrs, 1+absF(pwErr))
			skipped := 0.0
			if sp.Sampled != nil {
				skipped = sp.Sampled.SkippedFrac()
			}
			fmt.Printf("%8d %12d %12d %8.2f%% %8.2f %8.2f %8.2f%% %7.1f%%\n",
				counts[i], ex.TotalCycles, sp.TotalCycles, 100*cycErr,
				ex.AvgActiveCores, sp.AvgActiveCores, 100*pwErr, 100*skipped)
			points = append(points, verifyPoint{
				Threads: counts[i], ExactCycles: ex.TotalCycles, SampledCycles: sp.TotalCycles,
				CycleErr: cycErr, ExactPower: ex.AvgActiveCores, SampledPower: sp.AvgActiveCores,
				PowerErr: pwErr, SkippedFrac: skipped,
			})
		}
		gCyc := stats.Gmean(cycErrs) - 1
		gPw := stats.Gmean(pwErrs) - 1
		fmt.Printf("# gmean |cycle err| %.3f%%, gmean |power err| %.3f%%\n", 100*gCyc, 100*gPw)
		out.Verify = &verifyJSON{Points: points, GmeanCycleErr: gCyc, GmeanPowerErr: gPw}
	}

	for _, pname := range strings.Split(*policies, ",") {
		pname = strings.TrimSpace(pname)
		if pname == "" {
			continue
		}
		var r core.RunResult
		switch strings.ToLower(pname) {
		case "hillclimb", "hill-climb":
			// Hill-climbing and the hybrid are not model-driven Policies
			// — their probes time real chunks — so their keyed runners
			// always execute exact.
			if dvfs {
				fmt.Fprintf(os.Stderr, "fdtsweep: policy %q does not support -power-budget/-freq-ladder (its probes time real chunks at nominal frequency)\n", pname)
				os.Exit(2)
			}
			r = core.RunHillClimbKeyed(cfg, info.Name, factory,
				core.HillClimb{ProbeIters: *probeIters, MinGain: *minGain})
		case "hybrid":
			if dvfs {
				fmt.Fprintf(os.Stderr, "fdtsweep: policy %q does not support -power-budget/-freq-ladder (its probes time real chunks at nominal frequency)\n", pname)
				os.Exit(2)
			}
			r = core.RunHybridKeyed(cfg, info.Name, factory,
				core.Hybrid{HP: core.HybridParams{ProbeIters: *probeIters, MinGain: *minGain}})
		default:
			pol, err := experiments.PolicyByName(pname)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdtsweep:", err)
				os.Exit(2)
			}
			if dvfs {
				r = core.RunPolicyBudgetKeyedMode(cfg, info.Name, factory, pol, pp, md)
			} else {
				r = core.RunPolicyKeyedMode(cfg, info.Name, factory, pol, md)
			}
		}
		out.Policies = append(out.Policies, r)
		fmt.Printf("# %-8s -> ", r.Policy)
		for _, k := range r.Kernels {
			fmt.Printf("[%s threads=%d", k.Kernel, k.Decision.Threads)
			if k.Decision.Freq != "" {
				fmt.Printf(" freq=%s", k.Decision.Freq)
			}
			fmt.Printf(" pcs=%d pbw=%d csfrac=%.2f%% bu1=%.2f%%] ",
				k.Decision.PCS, k.Decision.PBW,
				100*k.Decision.CSFraction, 100*k.Decision.BusUtil1)
		}
		fmt.Printf("time=%.3f power=%.2f", float64(r.TotalCycles)/float64(base), r.AvgActiveCores)
		if r.Energy != nil {
			fmt.Printf(" energy=%.0f", r.Energy.Total)
		}
		fmt.Println()
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, out); err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			os.Exit(1)
		}
	}

	hits, misses := core.RunCacheStats()
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("# [%d workers; run cache: %d hits / %d misses (%.1f%% hit rate)]\n",
		runner.Workers(), hits, misses, rate)
	if st, ok := core.RunStoreStats(); ok {
		fmt.Printf("# [run store: %d loads / %d saves]\n", st.Hits, st.Puts)
	}
}

// runCorunSweep is the -corun mode: instead of the thread dimension,
// sweep the thread-to-core mapping dimension for a co-scheduled pair.
// Every mapping row reports each tenant solo on its partition (the
// interference-free control) against the co-run, under combined
// SAT+BAT controllers.
func runCorunSweep(cfg machine.Config, pair, mapStr string, md core.Mode, jsonPath string) int {
	a, b, err := workloads.ParsePair(pair)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdtsweep:", err)
		return 2
	}
	mappings := []machine.Mapping{machine.MapPacked, machine.MapScattered, machine.MapSMT}
	if mapStr != "" {
		mp, err := machine.ParseMapping(mapStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			return 2
		}
		mappings = []machine.Mapping{mp}
	}

	specs := []core.TeamSpec{
		{Workload: a.Name, Factory: a.Factory, Policy: core.Combined{}},
		{Workload: b.Name, Factory: b.Factory, Policy: core.Combined{}},
	}
	fmt.Printf("# corun %s + %s on %d cores under sat+bat (solo runs use the same partition, empty machine)\n",
		a.Name, b.Name, cfg.Mem.Cores)
	fmt.Printf("%-10s %-10s %12s %12s %9s %8s %8s %9s\n",
		"mapping", "workload", "solo.cyc", "corun.cyc", "slowdown", "thr.solo", "thr.co", "bus.share")
	out := corunSweepJSON{PairA: a.Name, PairB: b.Name, Cores: cfg.Mem.Cores}
	for _, mp := range mappings {
		co, err := core.RunCorun(cfg, mp, specs, md)
		if err != nil {
			// An invalid mapping for this config (e.g. smt without
			// planes) is only an error when explicitly requested.
			if mapStr != "" {
				fmt.Fprintln(os.Stderr, "fdtsweep:", err)
				return 2
			}
			continue
		}
		row := corunSweepRow{Mapping: mp.String(), Makespan: co.TotalCycles, Corun: co}
		for i := range specs {
			solo, err := core.RunSolo(cfg, mp, len(specs), i, specs[i], md)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fdtsweep:", err)
				return 2
			}
			ct := co.Teams[i]
			slow := 0.0
			if solo.TotalCycles > 0 {
				slow = 100 * (float64(ct.TotalCycles)/float64(solo.TotalCycles) - 1)
			}
			fmt.Printf("%-10s %-10s %12d %12d %8.1f%% %8.1f %8.1f %8.1f%%\n",
				mp, specs[i].Workload, solo.TotalCycles, ct.TotalCycles, slow,
				solo.AvgThreads(), ct.AvgThreads(), 100*ct.BusShare)
			row.Solo = append(row.Solo, solo)
		}
		out.Rows = append(out.Rows, row)
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath, out); err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			return 1
		}
	}
	hits, misses := core.RunCacheStats()
	fmt.Printf("# [run cache: %d hits / %d misses]\n", hits, misses)
	return 0
}

// corunSweepJSON is the -corun -json payload: one row per mapping
// with the co-run result and each tenant's solo control.
type corunSweepJSON struct {
	PairA string          `json:"pair_a"`
	PairB string          `json:"pair_b"`
	Cores int             `json:"cores"`
	Rows  []corunSweepRow `json:"rows"`
}

type corunSweepRow struct {
	Mapping  string            `json:"mapping"`
	Makespan uint64            `json:"makespan"`
	Corun    core.CorunResult  `json:"corun"`
	Solo     []core.TeamResult `json:"solo"`
}

// sweepJSON is fdtsweep's machine-readable output: the full RunResult
// of every sweep point and policy run.
type sweepJSON struct {
	Workload   string           `json:"workload"`
	Cores      int              `json:"cores"`
	Bandwidth  float64          `json:"bandwidth"`
	Threads    []int            `json:"threads"`
	Sweep      []core.RunResult `json:"sweep"`
	MinThreads int              `json:"min_threads"`
	Policies   []core.RunResult `json:"policies,omitempty"`
	Verify     *verifyJSON      `json:"verify,omitempty"`
}

// verifyJSON is the -sampled -verify accuracy audit: per-point
// exact-vs-sampled comparison plus error geometric means.
type verifyJSON struct {
	Points        []verifyPoint `json:"points"`
	GmeanCycleErr float64       `json:"gmean_cycle_err"`
	GmeanPowerErr float64       `json:"gmean_power_err"`
}

type verifyPoint struct {
	Threads       int     `json:"threads"`
	ExactCycles   uint64  `json:"exact_cycles"`
	SampledCycles uint64  `json:"sampled_cycles"`
	CycleErr      float64 `json:"cycle_err"`
	ExactPower    float64 `json:"exact_power"`
	SampledPower  float64 `json:"sampled_power"`
	PowerErr      float64 `json:"power_err"`
	SkippedFrac   float64 `json:"skipped_frac"`
}

// relErr is (got-want)/want, signed.
func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func parseThreads(s string, cores int) ([]int, error) {
	if s == "" {
		out := make([]int, cores)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
