// Command fdtsweep sweeps a workload across static thread counts and
// prints the baseline curve of the paper's per-workload figures —
// normalized execution time (and bus utilization) versus thread
// count — plus the point each feedback policy picks.
//
// Usage:
//
//	fdtsweep -workload ed
//	fdtsweep -workload pagemine -threads 1,2,4,8,16,32
//	fdtsweep -workload convert -bandwidth 2
//	fdtsweep -workload ed -parallel 1   # legacy serial (0 = GOMAXPROCS)
//	fdtsweep -workload ed -json sweep.json   # machine-readable output ("-" = stdout)
//
// Sweep points are independent simulations; they fan out over a host
// worker pool and land in the process-wide run cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/stats"
	"fdt/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "ed", "workload name")
		threadStr = flag.String("threads", "", "comma-separated static thread counts (default 1..cores)")
		cores     = flag.Int("cores", 32, "cores on the simulated chip")
		bandwidth = flag.Float64("bandwidth", 1.0, "off-chip bandwidth scale factor")
		policies  = flag.String("policies", "sat,bat,sat+bat", "feedback policies to place on the curve")
		parallel  = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
		jsonPath  = flag.String("json", "", "write the sweep and policy runs as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()
	runner.SetWorkers(*parallel)

	info, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "fdtsweep: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth)
	factory := func(m *machine.Machine) core.Workload { return info.Factory(m) }

	counts, err := parseThreads(*threadStr, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdtsweep:", err)
		os.Exit(2)
	}

	sweep := core.SweepKeyed(cfg, info.Name, factory, counts)
	base := sweep[0].TotalCycles // normalize to the 1-thread run
	fmt.Printf("# %s on %d cores, %.2gx bandwidth (time normalized to %d threads)\n",
		info.Name, *cores, *bandwidth, counts[0])
	fmt.Printf("%8s %12s %10s %10s %10s\n", "threads", "cycles", "norm.time", "bus.util", "power")
	times := make([]uint64, len(sweep))
	for i, r := range sweep {
		times[i] = r.TotalCycles
		fmt.Printf("%8d %12d %10.3f %9.1f%% %10.2f\n",
			counts[i], r.TotalCycles,
			float64(r.TotalCycles)/float64(base),
			100*float64(r.BusBusyCycles)/float64(r.TotalCycles),
			r.AvgActiveCores)
	}
	bestIdx, bestCycles := stats.ArgMinUint(times)
	fmt.Printf("# minimum at %d threads (%d cycles)\n", counts[bestIdx], bestCycles)

	out := sweepJSON{
		Workload:   info.Name,
		Cores:      *cores,
		Bandwidth:  *bandwidth,
		Threads:    counts,
		Sweep:      sweep,
		MinThreads: counts[bestIdx],
	}

	for _, pname := range strings.Split(*policies, ",") {
		pname = strings.TrimSpace(pname)
		if pname == "" {
			continue
		}
		pol, err := policyByName(pname)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			os.Exit(2)
		}
		r := core.RunPolicyKeyed(cfg, info.Name, factory, pol)
		out.Policies = append(out.Policies, r)
		fmt.Printf("# %-8s -> ", r.Policy)
		for _, k := range r.Kernels {
			fmt.Printf("[%s threads=%d pcs=%d pbw=%d csfrac=%.2f%% bu1=%.2f%%] ",
				k.Kernel, k.Decision.Threads, k.Decision.PCS, k.Decision.PBW,
				100*k.Decision.CSFraction, 100*k.Decision.BusUtil1)
		}
		fmt.Printf("time=%.3f power=%.2f\n",
			float64(r.TotalCycles)/float64(base), r.AvgActiveCores)
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, out); err != nil {
			fmt.Fprintln(os.Stderr, "fdtsweep:", err)
			os.Exit(1)
		}
	}

	hits, misses := core.RunCacheStats()
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("# [%d workers; run cache: %d hits / %d misses (%.1f%% hit rate)]\n",
		runner.Workers(), hits, misses, rate)
}

// sweepJSON is fdtsweep's machine-readable output: the full RunResult
// of every sweep point and policy run.
type sweepJSON struct {
	Workload   string           `json:"workload"`
	Cores      int              `json:"cores"`
	Bandwidth  float64          `json:"bandwidth"`
	Threads    []int            `json:"threads"`
	Sweep      []core.RunResult `json:"sweep"`
	MinThreads int              `json:"min_threads"`
	Policies   []core.RunResult `json:"policies,omitempty"`
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func parseThreads(s string, cores int) ([]int, error) {
	if s == "" {
		out := make([]int, cores)
		for i := range out {
			out[i] = i + 1
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func policyByName(name string) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "sat":
		return core.SAT{}, nil
	case "bat":
		return core.BAT{}, nil
	case "sat+bat", "combined", "fdt":
		return core.Combined{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
