package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdt/internal/core"
)

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-only", "nosuchfig"},
		{"-nosuchflag"},
		{"-corun", "nosuch+mg"},
		{"-corun", "pagemine"},
		{"-mapping", "nosuch"},
		{"-power-budget", "-1"},
		{"-freq-ladder", "notanumber"},
		{"-freq-ladder", "800,1600"}, // must be strictly descending
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want exit 2; stderr: %s", args, code, errb.String())
		}
	}
}

func TestTablesOnly(t *testing.T) {
	// table1/table2 render without simulating anything.
	for _, name := range []string{"table1", "table2"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-only", name}, &out, &errb); code != 0 {
			t.Fatalf("-only %s: exit %d, stderr: %s", name, code, errb.String())
		}
		if !strings.Contains(out.String(), "Table") {
			t.Errorf("-only %s output missing a table header:\n%s", name, out.String())
		}
	}
}

func TestInterferenceRestricted(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-run simulations")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	// -corun without -only implies the interference family alone.
	args := []string{"-corun", "ed+convert", "-mapping", "packed", "-csv", dir}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Co-runner interference", "ed + convert", "packed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "Figure 2") {
		t.Error("-corun should not run the figure experiments")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "interference.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "pair,workload,") {
		t.Errorf("interference.csv missing header: %q", string(csv[:min(len(csv), 40)]))
	}
}

func TestGauntletOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("full gauntlet simulations")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-only", "gauntlet", "-fast", "-csv", dir}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Robustness gauntlet", "gauntlet/oscillate",
		"gauntlet/eqclash", "oracle:", "hybrid", "hill-climb", "<- best"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	csv, err := os.ReadFile(filepath.Join(dir, "gauntlet.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "workload,breaks,oracle_threads,") {
		t.Errorf("gauntlet.csv missing header: %q", string(csv[:min(len(csv), 60)]))
	}
}

func TestFig2CSVAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-only", "fig2", "-fast", "-csv", dir, "-json", dir}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Errorf("report missing the figure rendition:\n%s", out.String())
	}

	csv, err := os.ReadFile(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "workload,") {
		t.Errorf("fig2.csv missing header: %q", string(csv[:min(len(csv), 40)]))
	}

	blob, err := os.ReadFile(filepath.Join(dir, "fig2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fig struct {
		Curve struct {
			Points []struct {
				Threads int
				Cycles  uint64
			}
		}
	}
	if err := json.Unmarshal(blob, &fig); err != nil {
		t.Fatalf("fig2.json is not valid JSON: %v", err)
	}
	if len(fig.Curve.Points) == 0 {
		t.Error("fig2.json has no sweep points")
	}
}

func TestCacheDirWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	// The run cache is process-global; start from a clean slate so the
	// cold pass really computes (earlier tests may have warmed it).
	core.ResetRunCache()
	t.Cleanup(core.ResetRunCache)

	dir := t.TempDir()
	storeLine := func(out string) (loads, saves, entries int) {
		for _, line := range strings.Split(out, "\n") {
			if n, _ := fmt.Sscanf(line, "[run store: %d loads / %d saves this run; %d entries",
				&loads, &saves, &entries); n == 3 {
				return loads, saves, entries
			}
		}
		t.Fatalf("no run-store footer in output:\n%s", out)
		return 0, 0, 0
	}

	var cold, errb bytes.Buffer
	args := []string{"-only", "fig2", "-fast", "-cache-dir", dir}
	if code := run(args, &cold, &errb); code != 0 {
		t.Fatalf("cold pass: exit %d, stderr: %s", code, errb.String())
	}
	loads, saves, entries := storeLine(cold.String())
	if loads != 0 || saves == 0 || entries != saves {
		t.Fatalf("cold pass: loads=%d saves=%d entries=%d, want 0 loads and saves==entries>0",
			loads, saves, entries)
	}

	// Simulate a fresh process: drop the in-memory cache, keep the disk
	// store. The warm pass must be served entirely from disk.
	core.ResetRunCache()
	var warm bytes.Buffer
	errb.Reset()
	if code := run(args, &warm, &errb); code != 0 {
		t.Fatalf("warm pass: exit %d, stderr: %s", code, errb.String())
	}
	wloads, wsaves, _ := storeLine(warm.String())
	if wloads != saves || wsaves != 0 {
		t.Fatalf("warm pass: loads=%d saves=%d, want %d loads and 0 saves", wloads, wsaves, saves)
	}
	// The report body must be identical; only the bracketed accounting
	// lines (store counters, wall-clock timings) legitimately differ
	// between the passes.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(strings.TrimSpace(line), "[") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(cold.String()) != strip(warm.String()) {
		t.Error("warm -cache-dir report differs from cold report")
	}
}
