// Command fdtreport regenerates the paper's evaluation — every table
// and figure — on the simulated machine and prints text renditions.
// With -csv it also writes each figure's series as CSV for plotting,
// and with -json each experiment's data as machine-readable JSON.
//
// Usage:
//
//	fdtreport                 # everything (Fig 15 runs the oracle)
//	fdtreport -only fig14     # one experiment
//	fdtreport -fast           # coarser sweeps for a quick look
//	fdtreport -csv out/       # also write out/fig2.csv, out/fig14.csv, ...
//	fdtreport -json out/      # also write out/fig2.json, out/fig14.json, ...
//	fdtreport -parallel 1     # legacy serial execution (0 = GOMAXPROCS)
//	fdtreport -sampled        # steady-state fast-forward (DESIGN.md Section 11)
//	fdtreport -cache-dir d/   # back the run cache with fdtd's disk store
//
// Independent simulations fan out over a host worker pool and are
// memoized for the process lifetime, so figures sharing baseline
// sweeps (8, 9, 10, 14, 15) simulate each distinct run once; the
// footer reports the worker count and the run-cache hit rate.
//
// With -sampled every run executes in sampled mode (-sample-tol and
// -sample-window tune the detector); the per-figure gmean cycle
// error against exact execution is gated at 3% in CI, and `fdtsweep
// -sampled -verify` audits any workload point by point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/machine"
	"fdt/internal/runner"
	"fdt/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body: flag errors and unknown
// experiment names return 2, unwritable outputs return 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdtreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only      = fs.String("only", "", "run a single experiment: table1, table2, fig2, fig4, fig8, fig9, fig10, fig12, fig13, fig14, fig15, smt, trainingcost, ablations, interference")
		corunPair = fs.String("corun", "", "restrict the interference family to one \"a+b\" pair (implies -only interference)")
		mapStr    = fs.String("mapping", "", "restrict the interference family to one mapping: packed, scattered, smt")
		fast      = fs.Bool("fast", false, "sweep a reduced set of thread counts")
		csvDir    = fs.String("csv", "", "directory to write per-figure CSV files into")
		jsonDir   = fs.String("json", "", "directory to write per-experiment JSON files into")
		parallel  = fs.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
		cacheDir  = fs.String("cache-dir", "", "disk run-store directory shared with fdtd (warm runs are loaded, new runs persisted)")
		useSample = fs.Bool("sampled", false, "execute kernels in sampled mode (steady-state fast-forward; see DESIGN.md Section 11)")
		sampleTol = fs.Float64("sample-tol", 0, "sampled-mode stability tolerance (0 = default)")
		sampleWin = fs.Int("sample-window", 0, "sampled-mode detailed-window length in iterations (0 = default)")
		budget    = fs.Float64("power-budget", 0, "average-chip-power cap in nominal-active-core units (0 = unconstrained; implies -freq-ladder default)")
		ladderStr = fs.String("freq-ladder", "", "P-state ladder: \"default\" or comma-separated MHz values, nominal first (empty = single-frequency machine)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ladder, err := machine.ResolveDVFS(*budget, *ladderStr)
	if err != nil {
		fmt.Fprintln(stderr, "fdtreport:", err)
		return 2
	}
	dvfs := *budget > 0 || !ladder.Trivial()
	if *corunPair != "" {
		if _, _, err := workloads.ParsePair(*corunPair); err != nil {
			fmt.Fprintln(stderr, "fdtreport:", err)
			return 2
		}
	}
	if *mapStr != "" {
		if _, err := machine.ParseMapping(*mapStr); err != nil {
			fmt.Fprintln(stderr, "fdtreport:", err)
			return 2
		}
	}

	runner.SetWorkers(*parallel)
	if *cacheDir != "" {
		st, err := core.OpenRunStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "fdtreport:", err)
			return 1
		}
		defer core.DetachRunStore()
		entries, bytes := st.Len()
		fmt.Fprintf(stdout, "[run store %s: %d entries ~%.1f KiB]\n\n",
			st.Dir(), entries, float64(bytes)/1024)
	}
	o := experiments.DefaultOptions()
	if *fast {
		o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32}
	}
	if dvfs {
		// The ladder and budget flow to every model-driven experiment
		// via Options.Power; measurement-driven runners (hill-climbing,
		// hybrid probes) and the co-run family execute the ladder at
		// nominal frequency and simply gain energy accounting. The
		// pareto family pins its own ladder/budget grid regardless.
		o.Cfg = o.Cfg.WithFreq(ladder)
		pp := core.PowerParams{Budget: *budget, LockState: -1}
		o.Power = &pp
	}
	if *useSample {
		o.Mode = core.SampledMode()
		o.Mode.Params.Tol = *sampleTol
		o.Mode.Params.WindowIters = *sampleWin
		o.Mode.Params = o.Mode.Params.WithDefaults()
	}

	// The experiment catalogue is shared with the fdtd daemon
	// (experiments.Registry), so a figure regenerated here and one
	// served over HTTP run the same code path and share cache/store
	// entries. Only the interference entry is overridden, to apply the
	// CLI-only -corun / -mapping restrictions.
	runners := experiments.Registry(o)
	if *corunPair != "" || *mapStr != "" {
		for i := range runners {
			if runners[i].Name != "interference" {
				continue
			}
			runners[i].Run = func() (string, string, any) {
				f, err := runInterference(o, *corunPair, *mapStr)
				if err != nil {
					return "interference: " + err.Error(), "", nil
				}
				return f.String(), f.CSV(), f
			}
		}
	}

	for _, dir := range []string{*csvDir, *jsonDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(stderr, "fdtreport:", err)
			return 1
		}
	}

	want := strings.ToLower(strings.TrimSpace(*only))
	if want == "" && (*corunPair != "" || *mapStr != "") {
		// A pair or mapping restriction only affects the interference
		// family; don't re-run everything else around it.
		want = "interference"
	}
	found := false
	for _, r := range runners {
		if want != "" && r.Name != want {
			continue
		}
		found = true
		start := time.Now()
		h0, m0 := core.RunCacheStats()
		_, _, e0 := core.RunCacheUsage()
		text, csv, data := r.Run()
		h1, m1 := core.RunCacheStats()
		_, _, e1 := core.RunCacheUsage()
		fmt.Fprintln(stdout, text)
		fmt.Fprintf(stdout, "  [%s took %.1fs; run cache: %d hits / %d misses, %d evictions]\n\n",
			r.Name, time.Since(start).Seconds(), h1-h0, m1-m0, e1-e0)
		if *csvDir != "" && csv != "" {
			path := filepath.Join(*csvDir, r.Name+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(stderr, "fdtreport:", err)
				return 1
			}
		}
		if *jsonDir != "" && data != nil {
			blob, err := json.MarshalIndent(data, "", "  ")
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, r.Name+".json"), append(blob, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(stderr, "fdtreport:", err)
				return 1
			}
		}
	}
	if !found {
		fmt.Fprintf(stderr, "fdtreport: unknown experiment %q\n", *only)
		return 2
	}

	hits, misses := core.RunCacheStats()
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	entries, bytes, evictions := core.RunCacheUsage()
	fmt.Fprintf(stdout, "[%d workers; run cache: %d hits / %d misses (%.1f%% hit rate), %d entries ~%.1f KiB, %d evictions]\n",
		runner.Workers(), hits, misses, rate, entries, float64(bytes)/1024, evictions)
	fmt.Fprintf(stdout, "[simulated energy: %.4g core-cycle units across all uncached runs]\n", core.SimEnergyTotal())
	if st, ok := core.RunStoreStats(); ok {
		sEntries, sBytes := core.RunStore().Len()
		fmt.Fprintf(stdout, "[run store: %d loads / %d saves this run; %d entries ~%.1f KiB on disk]\n",
			st.Hits, st.Puts, sEntries, float64(sBytes)/1024)
	}
	return 0
}

// runInterference applies the -corun / -mapping restrictions to the
// interference family (nil = family defaults).
func runInterference(o experiments.Options, pair, mapStr string) (experiments.Interference, error) {
	var pairs [][2]string
	if pair != "" {
		a, b, err := workloads.ParsePair(pair)
		if err != nil {
			return experiments.Interference{}, err
		}
		pairs = [][2]string{{a.Name, b.Name}}
	}
	var mappings []machine.Mapping
	if mapStr != "" {
		mp, err := machine.ParseMapping(mapStr)
		if err != nil {
			return experiments.Interference{}, err
		}
		mappings = []machine.Mapping{mp}
	}
	return experiments.RunInterferencePairs(o, pairs, mappings), nil
}
