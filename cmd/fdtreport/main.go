// Command fdtreport regenerates the paper's evaluation — every table
// and figure — on the simulated machine and prints text renditions.
// With -csv it also writes each figure's series as CSV for plotting.
//
// Usage:
//
//	fdtreport                 # everything (Fig 15 runs the oracle)
//	fdtreport -only fig14     # one experiment
//	fdtreport -fast           # coarser sweeps for a quick look
//	fdtreport -csv out/       # also write out/fig2.csv, out/fig14.csv, ...
//	fdtreport -parallel 1     # legacy serial execution (0 = GOMAXPROCS)
//
// Independent simulations fan out over a host worker pool and are
// memoized for the process lifetime, so figures sharing baseline
// sweeps (8, 9, 10, 14, 15) simulate each distinct run once; the
// footer reports the worker count and the run-cache hit rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fdt/internal/core"
	"fdt/internal/experiments"
	"fdt/internal/runner"
)

func main() {
	var (
		only     = flag.String("only", "", "run a single experiment: table1, table2, fig2, fig4, fig8, fig9, fig10, fig12, fig13, fig14, fig15, smt, trainingcost, ablations")
		fast     = flag.Bool("fast", false, "sweep a reduced set of thread counts")
		csvDir   = flag.String("csv", "", "directory to write per-figure CSV files into")
		parallel = flag.Int("parallel", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	runner.SetWorkers(*parallel)
	o := experiments.DefaultOptions()
	if *fast {
		o.SweepThreads = []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 32}
	}

	runners := []struct {
		name string
		run  func() (text, csv string)
	}{
		{"table1", func() (string, string) { return experiments.Table1(o.Cfg), "" }},
		{"table2", func() (string, string) { return experiments.Table2(), "" }},
		{"fig2", func() (string, string) { f := experiments.RunFig02(o); return f.String(), f.CSV() }},
		{"fig4", func() (string, string) { f := experiments.RunFig04(o); return f.String(), f.CSV() }},
		{"fig8", func() (string, string) { f := experiments.RunFig08(o); return f.String(), f.CSV() }},
		{"fig9", func() (string, string) { f := experiments.RunFig09(o); return f.String(), f.CSV() }},
		{"fig10", func() (string, string) { f := experiments.RunFig10(o); return f.String(), f.CSV() }},
		{"fig12", func() (string, string) { f := experiments.RunFig12(o); return f.String(), f.CSV() }},
		{"fig13", func() (string, string) { f := experiments.RunFig13(o); return f.String(), f.CSV() }},
		{"fig14", func() (string, string) { f := experiments.RunFig14(o); return f.String(), f.CSV() }},
		{"fig15", func() (string, string) { f := experiments.RunFig15(o); return f.String(), f.CSV() }},
		{"smt", func() (string, string) {
			s := experiments.RunSMT(o)
			return s.String(), s.CSV()
		}},
		{"trainingcost", func() (string, string) {
			t := experiments.RunTrainingCost(o)
			return t.String(), t.CSV()
		}},
		{"ablations", func() (string, string) {
			var texts, csvs []string
			for _, a := range experiments.RunAblations(o) {
				texts = append(texts, a.String())
				csvs = append(csvs, a.CSV())
			}
			return strings.Join(texts, "\n"), strings.Join(csvs, "")
		}},
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fdtreport:", err)
			os.Exit(1)
		}
	}

	want := strings.ToLower(strings.TrimSpace(*only))
	found := false
	for _, r := range runners {
		if want != "" && r.name != want {
			continue
		}
		found = true
		start := time.Now()
		text, csv := r.run()
		fmt.Println(text)
		fmt.Printf("  [%s took %.1fs]\n\n", r.name, time.Since(start).Seconds())
		if *csvDir != "" && csv != "" {
			path := filepath.Join(*csvDir, r.name+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "fdtreport:", err)
				os.Exit(1)
			}
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "fdtreport: unknown experiment %q\n", *only)
		os.Exit(2)
	}

	hits, misses := core.RunCacheStats()
	rate := 0.0
	if hits+misses > 0 {
		rate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("[%d workers; run cache: %d hits / %d misses (%.1f%% hit rate)]\n",
		runner.Workers(), hits, misses, rate)
}
