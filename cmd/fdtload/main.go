// Command fdtload is the load generator for fdtd: N concurrent
// clients each submit M identical sweep jobs and poll them to
// completion, then the tool reports throughput, latency percentiles,
// and the daemon's cache-hit picture (from /v1/stats deltas) so a
// cold run and a warm re-run can be compared directly.
//
//	fdtd -addr :8080 -store /tmp/runs &
//	fdtload -addr localhost:8080 -clients 4 -requests 8
//	fdtload -addr localhost:8080 -clients 4 -requests 8 -json > warm.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Report is the machine-readable output (-json), also the schema of
// BENCH_PR9.json entries.
type Report struct {
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests_per_client"`
	Total      int     `json:"total_requests"`
	Failed     int     `json:"failed"`
	WallSec    float64 `json:"wall_seconds"`
	Throughput float64 `json:"jobs_per_second"`
	// Latency of submit -> done, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// Daemon-side deltas over this load run.
	Computes    uint64  `json:"computes"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	StoreHits   uint64  `json:"store_hits"`
	HitRatio    float64 `json:"hit_ratio"`
}

type statsSnap struct {
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	CacheComputes uint64 `json:"cache_computes"`
	Store         *struct {
		Hits uint64 `json:"hits"`
	} `json:"store,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdtload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "fdtd address (host:port)")
	clients := fs.Int("clients", 4, "concurrent clients")
	requests := fs.Int("requests", 4, "requests per client")
	workload := fs.String("workload", "pagemine", "workload to sweep")
	threadsFlag := fs.String("threads", "2,4", "comma-separated thread counts")
	policiesFlag := fs.String("policies", "", "comma-separated policies to place (optional)")
	cores := fs.Int("cores", 8, "simulated cores")
	mode := fs.String("mode", "exact", "simulation mode: exact or sampled")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "fdtload: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *clients < 1 || *requests < 1 {
		fmt.Fprintln(stderr, "fdtload: -clients and -requests must be >= 1")
		return 2
	}

	var threads []int
	if *threadsFlag != "" {
		for _, f := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(stderr, "fdtload: bad -threads %q: %v\n", *threadsFlag, err)
				return 2
			}
			threads = append(threads, n)
		}
	}
	var policies []string
	if *policiesFlag != "" {
		for _, p := range strings.Split(*policiesFlag, ",") {
			policies = append(policies, strings.TrimSpace(p))
		}
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	spec := map[string]any{
		"workload": *workload, "cores": *cores, "mode": *mode,
	}
	if len(threads) > 0 {
		spec["threads"] = threads
	}
	if len(policies) > 0 {
		spec["policies"] = policies
	}

	before, err := fetchStats(base)
	if err != nil {
		fmt.Fprintf(stderr, "fdtload: %v\n", err)
		return 1
	}

	total := *clients * *requests
	latencies := make([]time.Duration, total)
	errs := make([]error, total)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("load-%d", c)
			for r := 0; r < *requests; r++ {
				i := c**requests + r
				t0 := time.Now()
				errs[i] = oneJob(base, client, spec)
				latencies[i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchStats(base)
	if err != nil {
		fmt.Fprintf(stderr, "fdtload: %v\n", err)
		return 1
	}

	failed := 0
	for i, e := range errs {
		if e != nil {
			failed++
			if failed <= 3 {
				fmt.Fprintf(stderr, "fdtload: request %d: %v\n", i, e)
			}
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		if total == 0 {
			return 0
		}
		i := int(p * float64(total-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	rep := Report{
		Clients: *clients, Requests: *requests, Total: total, Failed: failed,
		WallSec:    wall.Seconds(),
		Throughput: float64(total-failed) / wall.Seconds(),
		P50Ms:      pct(0.50), P90Ms: pct(0.90), P99Ms: pct(0.99),
		MaxMs:       float64(latencies[total-1]) / float64(time.Millisecond),
		Computes:    after.CacheComputes - before.CacheComputes,
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
	}
	if before.Store != nil && after.Store != nil {
		rep.StoreHits = after.Store.Hits - before.Store.Hits
	}
	if lookups := rep.CacheHits + rep.CacheMisses; lookups > 0 {
		rep.HitRatio = float64(rep.CacheHits+rep.StoreHits) / float64(lookups)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Fprintf(stdout, "fdtload: %d clients x %d requests against %s\n", *clients, *requests, base)
		fmt.Fprintf(stdout, "  %d jobs in %.2fs (%.1f jobs/s), %d failed\n",
			total, rep.WallSec, rep.Throughput, failed)
		fmt.Fprintf(stdout, "  latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
			rep.P50Ms, rep.P90Ms, rep.P99Ms, rep.MaxMs)
		fmt.Fprintf(stdout, "  daemon: %d computes, %d cache hits, %d store hits (hit ratio %.2f)\n",
			rep.Computes, rep.CacheHits, rep.StoreHits, rep.HitRatio)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// oneJob submits one sweep and polls it to a terminal state.
func oneJob(base, client string, spec map[string]any) error {
	body := map[string]any{"client": client}
	for k, v := range spec {
		body[k] = v
	}
	blob, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("submit: %d %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return err
	}

	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			return err
		}
		var jv struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch jv.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", v.ID, jv.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("job %s timed out", v.ID)
}

func fetchStats(base string) (statsSnap, error) {
	var st statsSnap
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, fmt.Errorf("stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats: %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
