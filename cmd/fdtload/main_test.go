package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"fdt/internal/core"
	"fdt/internal/service"
)

func startService(t *testing.T, storeDir string) *httptest.Server {
	t.Helper()
	core.DetachRunStore()
	core.ResetRunCache()
	t.Cleanup(func() {
		core.DetachRunStore()
		core.ResetRunCache()
	})
	if storeDir != "" {
		if _, err := core.OpenRunStore(storeDir); err != nil {
			t.Fatal(err)
		}
	}
	s := service.New(service.Config{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestLoadColdThenWarm(t *testing.T) {
	ts := startService(t, t.TempDir())
	addr := strings.TrimPrefix(ts.URL, "http://")

	// Cold pass: 2 clients x 2 requests, all identical; only the two
	// distinct sweep points are ever computed.
	var out, errOut bytes.Buffer
	code := run([]string{"-addr", addr, "-clients", "2", "-requests", "2", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("cold run exit %d: %s", code, errOut.String())
	}
	var cold Report
	if err := json.Unmarshal(out.Bytes(), &cold); err != nil {
		t.Fatalf("bad cold report: %v\n%s", err, out.String())
	}
	if cold.Total != 4 || cold.Failed != 0 {
		t.Fatalf("cold = %+v", cold)
	}
	if cold.Computes != 2 {
		t.Errorf("cold computes = %d, want 2", cold.Computes)
	}
	if cold.Throughput <= 0 || cold.P50Ms <= 0 || cold.MaxMs < cold.P99Ms || cold.P99Ms < cold.P50Ms {
		t.Errorf("implausible latency stats: %+v", cold)
	}

	// Warm pass: everything is already in cache; zero new computes and
	// a perfect hit ratio.
	out.Reset()
	code = run([]string{"-addr", addr, "-clients", "2", "-requests", "2", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("warm run exit %d: %s", code, errOut.String())
	}
	var warm Report
	if err := json.Unmarshal(out.Bytes(), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Computes != 0 {
		t.Errorf("warm computes = %d, want 0", warm.Computes)
	}
	if warm.HitRatio != 1.0 {
		t.Errorf("warm hit ratio = %g, want 1.0", warm.HitRatio)
	}
	if warm.P50Ms >= cold.P50Ms {
		t.Errorf("warm p50 %.2fms not below cold p50 %.2fms", warm.P50Ms, cold.P50Ms)
	}
}

func TestLoadHumanOutput(t *testing.T) {
	ts := startService(t, "")
	addr := strings.TrimPrefix(ts.URL, "http://")

	var out, errOut bytes.Buffer
	code := run([]string{"-addr", addr, "-clients", "1", "-requests", "1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"jobs/s", "latency ms", "computes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestLoadFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nosuch"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
	if code := run([]string{"-clients", "0"}, &out, &errOut); code != 2 {
		t.Errorf("zero clients exit = %d, want 2", code)
	}
	if code := run([]string{"-threads", "2,x"}, &out, &errOut); code != 2 {
		t.Errorf("bad threads exit = %d, want 2", code)
	}
	// Unreachable daemon is a runtime error, not a usage error.
	if code := run([]string{"-addr", "127.0.0.1:1"}, &out, &errOut); code != 1 {
		t.Errorf("unreachable daemon exit = %d, want 1", code)
	}
}

func TestLoadRejectedJobSurfaces(t *testing.T) {
	ts := startService(t, "")
	addr := strings.TrimPrefix(ts.URL, "http://")
	var out, errOut bytes.Buffer
	code := run([]string{"-addr", addr, "-workload", "nosuch", "-clients", "1", "-requests", "1"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "submit: 400") {
		t.Errorf("missing submit error: %s", errOut.String())
	}
}
