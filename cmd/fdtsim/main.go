// Command fdtsim runs one workload on the simulated 32-core CMP under
// one threading policy and prints a report: execution time, average
// active cores (the paper's power metric), per-kernel FDT decisions
// and the verification verdict.
//
// Usage:
//
//	fdtsim -workload pagemine -policy sat+bat
//	fdtsim -workload ed -policy static -threads 32
//	fdtsim -workload convert -policy bat -bandwidth 0.5
//	fdtsim -workload ed -policy bat -trace ed.trace.json
//	fdtsim -workload isort -check
//	fdtsim -workload ep -policy hillclimb
//	fdtsim -workload ed -sampled             # steady-state fast-forward
//	fdtsim -list
//
// Sampled mode (-sampled, tuned by -sample-tol and -sample-window)
// extrapolates through steady-state kernel regions; see DESIGN.md
// Section 11. Invariant checking (-check) and tracing need every
// cycle simulated, so they force exact execution with a note.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fdt/internal/core"
	"fdt/internal/invariant"
	"fdt/internal/machine"
	"fdt/internal/trace"
	"fdt/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body: flag errors and unknown inputs
// return 2, simulation-level failures (verification, violated
// invariants, unwritable outputs) return 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "pagemine", "workload name (see -list)")
		corun      = fs.String("corun", "", "co-schedule two workloads as \"a+b\" (overrides -workload; see -list)")
		mapping    = fs.String("mapping", "packed", "thread-to-core mapping for -corun: packed, scattered, smt")
		policy     = fs.String("policy", "sat+bat", "threading policy: sat, bat, sat+bat, static")
		threads    = fs.Int("threads", 0, "thread count for -policy static (0 = all cores)")
		cores      = fs.Int("cores", 32, "cores on the simulated chip")
		bandwidth  = fs.Float64("bandwidth", 1.0, "off-chip bandwidth scale factor")
		verify     = fs.Bool("verify", true, "verify the workload's computed results")
		list       = fs.Bool("list", false, "list workloads and exit")
		dumpCtrs   = fs.Bool("counters", false, "dump the machine's counter set")
		sparkline  = fs.Bool("sparkline", false, "sample the run and print bus/active-core sparklines")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
		check      = fs.Bool("check", false, "arm the runtime invariant checker (conservation, queueing, coherence, controller equations)")
		useSample  = fs.Bool("sampled", false, "execute kernels in sampled mode (steady-state fast-forward; see DESIGN.md Section 11)")
		sampleTol  = fs.Float64("sample-tol", 0, "sampled-mode stability tolerance (0 = default)")
		sampleWin  = fs.Int("sample-window", 0, "sampled-mode detailed-window length in iterations (0 = default)")
		probeIters = fs.Int("probe-iters", 0, "probe chunk length in iterations for -policy hillclimb/hybrid (0 = default)")
		minGain    = fs.Float64("min-gain", 0, "fractional speedup a probed size needs to win, for -policy hillclimb/hybrid (0 = default)")
		budget     = fs.Float64("power-budget", 0, "average-chip-power cap in nominal-active-core units (0 = unconstrained; implies -freq-ladder default)")
		ladderStr  = fs.String("freq-ladder", "", "P-state ladder: \"default\" or comma-separated MHz values, nominal first (empty = single-frequency machine)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *probeIters < 0 {
		fmt.Fprintf(stderr, "fdtsim: -probe-iters %d, want >= 0 (0 = default)\n", *probeIters)
		return 2
	}
	if *minGain < 0 || *minGain >= 1 {
		fmt.Fprintf(stderr, "fdtsim: -min-gain %g, want in [0, 1)\n", *minGain)
		return 2
	}
	ladder, err := machine.ResolveDVFS(*budget, *ladderStr)
	if err != nil {
		fmt.Fprintln(stderr, "fdtsim:", err)
		return 2
	}
	dvfs := *budget > 0 || !ladder.Trivial()

	if *list {
		printList(stdout)
		return 0
	}

	var info workloads.Info
	if *corun == "" {
		var ok bool
		info, ok = workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(stderr, "fdtsim: unknown workload %q (try -list)\n", *workload)
			return 2
		}
	}
	hillClimb, hybrid := false, false
	var pol core.Policy
	switch strings.ToLower(*policy) {
	case "hillclimb", "hill-climb":
		hillClimb = true
	case "hybrid":
		hybrid = true
	default:
		var err error
		pol, err = parsePolicy(*policy, *threads)
		if err != nil {
			fmt.Fprintln(stderr, "fdtsim:", err)
			return 2
		}
	}
	if dvfs && (hillClimb || hybrid) {
		fmt.Fprintf(stderr, "fdtsim: -policy %s does not support -power-budget/-freq-ladder (its probes time real chunks at nominal frequency)\n", *policy)
		return 2
	}

	// Invariant accounting, tracing and hill-climb probing all need
	// every cycle simulated; they win over -sampled.
	md := core.ExactMode()
	if *useSample {
		switch {
		case *check:
			fmt.Fprintln(stdout, "note: -check forces exact execution (invariant accounting needs every cycle simulated)")
		case *traceOut != "":
			fmt.Fprintln(stdout, "note: -trace forces exact execution (a golden trace must record every event)")
		case hillClimb:
			fmt.Fprintln(stdout, "note: -policy hillclimb forces exact execution (its probes time real chunks)")
		case hybrid:
			fmt.Fprintln(stdout, "note: -policy hybrid forces exact execution (its refinement probes time real chunks)")
		default:
			md = core.SampledMode()
			md.Params.Tol = *sampleTol
			md.Params.WindowIters = *sampleWin
			md.Params = md.Params.WithDefaults()
		}
	}

	cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth).WithFreq(ladder)
	m := machine.MustNew(cfg)
	var samples *machine.SampleLog
	if *sparkline {
		samples = m.StartSampler(0)
	}
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(1<<19, trace.CatMem|trace.CatSync|trace.CatCtl)
		m.AttachTracer(tr)
	}
	var ck *invariant.Checker
	if *check {
		ck = invariant.New()
		m.AttachChecker(ck)
	}

	if *corun != "" {
		if hillClimb || hybrid {
			fmt.Fprintf(stderr, "fdtsim: -policy %s does not support -corun (its probes own the whole machine)\n", *policy)
			return 2
		}
		if dvfs {
			fmt.Fprintln(stderr, "fdtsim: -corun does not support -power-budget/-freq-ladder (per-team power attribution is not modeled)")
			return 2
		}
		return runCorun(m, *corun, *mapping, pol, md, *verify, *dumpCtrs, ck, samples, stdout, stderr)
	}

	hc := core.HillClimb{ProbeIters: *probeIters, MinGain: *minGain}
	hy := core.Hybrid{HP: core.HybridParams{ProbeIters: *probeIters, MinGain: *minGain}}
	pp := core.PowerParams{Budget: *budget, LockState: -1}
	// Instrumented runs (sparklines, tracing, invariants, counter dumps)
	// need the machine built here, with the observers attached; plain
	// runs route through the keyed run cache so repeated invocations in
	// one process (and the experiment figures) share the simulation.
	instrumented := *sparkline || *traceOut != "" || *check || *dumpCtrs
	var w core.Workload
	var res core.RunResult
	if instrumented {
		w = info.Factory(m)
		switch {
		case hillClimb:
			res = hc.Run(m, w)
		case hybrid:
			res = hy.Run(m, w)
		default:
			ctl := core.NewController(pol)
			ctl.Mode = md
			if dvfs {
				ctl.Power = &pp
			}
			res = ctl.Run(m, w)
		}
	} else {
		f := func(mm *machine.Machine) core.Workload {
			w = info.Factory(mm)
			return w
		}
		switch {
		case hillClimb:
			res = core.RunHillClimbKeyed(cfg, info.Name, f, hc)
		case hybrid:
			res = core.RunHybridKeyed(cfg, info.Name, f, hy)
		case dvfs:
			res = core.RunPolicyBudgetKeyedMode(cfg, info.Name, f, pol, pp, md)
		default:
			res = core.RunPolicyKeyedMode(cfg, info.Name, f, pol, md)
		}
	}

	fmt.Fprintf(stdout, "workload   %s (%s)\n", res.Workload, info.Class)
	fmt.Fprintf(stdout, "policy     %s\n", res.Policy)
	if dvfs {
		names := make([]string, len(ladder.States))
		for i, s := range ladder.States {
			names[i] = s.Name
		}
		budgetStr := "unconstrained"
		if *budget > 0 {
			budgetStr = fmt.Sprintf("%.2f", *budget)
		}
		fmt.Fprintf(stdout, "machine    %d cores, %.2gx bandwidth, ladder %s, budget %s\n",
			*cores, *bandwidth, strings.Join(names, ">"), budgetStr)
	} else {
		fmt.Fprintf(stdout, "machine    %d cores, %.2gx bandwidth\n", *cores, *bandwidth)
	}
	fmt.Fprintf(stdout, "exec time  %d cycles\n", res.TotalCycles)
	fmt.Fprintf(stdout, "power      %.2f avg active cores\n", res.AvgActiveCores)
	if e := res.Energy; e != nil {
		fmt.Fprintf(stdout, "energy     %.0f core-cycles (%.2f avg chip power, table-driven)\n", e.Total, e.AvgPower)
	}
	fmt.Fprintf(stdout, "bus busy   %d cycles (%.1f%% of run)\n",
		res.BusBusyCycles, 100*float64(res.BusBusyCycles)/float64(res.TotalCycles))
	fmt.Fprintf(stdout, "avgthreads %.1f\n", res.AvgThreads())
	for _, k := range res.Kernels {
		d := k.Decision
		freq := ""
		if d.Freq != "" {
			freq = " freq=" + d.Freq
		}
		fmt.Fprintf(stdout, "kernel %-22s threads=%-3d%s pcs=%-3d pbw=%-3d csfrac=%.3f%% bu1=%.2f%% train=%d iters (%d cyc) total=%d cyc\n",
			k.Kernel, d.Threads, freq, d.PCS, d.PBW, 100*d.CSFraction, 100*d.BusUtil1, k.TrainIters, k.TrainCycles, k.Cycles)
	}
	if s := res.Sampled; s != nil {
		fmt.Fprintf(stdout, "sampled    %d detailed + %d skipped iters (%.1f%% skipped), %d fast-forwards, %d re-entries, %d cycles extrapolated\n",
			s.DetailedIters, s.SkippedIters, 100*s.SkippedFrac(), s.FastForwards, s.Reentries, s.SkippedCycles)
	}

	if *dumpCtrs {
		fmt.Fprintf(stdout, "counters   %s\n", m.Ctrs)
	}
	if samples != nil {
		fmt.Fprintln(stdout, samples)
	}
	if tr != nil {
		meta := map[string]string{
			"workload":     res.Workload,
			"policy":       res.Policy,
			"cores":        fmt.Sprintf("%d", *cores),
			"bandwidth":    fmt.Sprintf("%g", *bandwidth),
			"total_cycles": fmt.Sprintf("%d", res.TotalCycles),
		}
		if err := writeChromeFile(*traceOut, tr, meta); err != nil {
			fmt.Fprintln(stderr, "fdtsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace      %d events (%d dropped) -> %s\n", tr.Len(), tr.Dropped(), *traceOut)
	}
	if *check {
		fmt.Fprintf(stdout, "invariants %s\n", ck.Report())
		if err := ck.Err(); err != nil {
			fmt.Fprintln(stderr, "fdtsim:", err)
			return 1
		}
	}

	if *verify {
		if res.Sampled != nil {
			// Fast-forwarded iterations never execute their host-side
			// computation, so the workload's arrays are incomplete by
			// construction — result verification only means something
			// on an exact run.
			fmt.Fprintln(stdout, "verify     skipped (sampled run: extrapolated iterations compute no results)")
		} else if v, ok := w.(workloads.Verifier); ok {
			if err := v.Verify(); err != nil {
				fmt.Fprintf(stdout, "verify     FAIL: %v\n", err)
				return 1
			}
			fmt.Fprintln(stdout, "verify     ok")
		} else {
			fmt.Fprintln(stdout, "verify     (workload has no verifier)")
		}
	}
	return 0
}

func writeChromeFile(path string, tr *trace.Tracer, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCorun executes a co-scheduled pair — each workload its own
// thread team under the mapping, each with an independent controller
// of the requested policy — and prints the makespan plus a per-tenant
// report.
func runCorun(m *machine.Machine, pair, mapping string, pol core.Policy, md core.Mode,
	verify, dumpCtrs bool, ck *invariant.Checker, samples *machine.SampleLog, stdout, stderr io.Writer) int {
	a, b, err := workloads.ParsePair(pair)
	if err != nil {
		fmt.Fprintf(stderr, "fdtsim: %v (try -list)\n", err)
		return 2
	}
	mp, err := machine.ParseMapping(mapping)
	if err != nil {
		fmt.Fprintln(stderr, "fdtsim:", err)
		return 2
	}

	// Wrap the factories to keep the built instances for -verify
	// (RunCorunOn instantiates them serially).
	var built []core.Workload
	spec := func(info workloads.Info) core.TeamSpec {
		return core.TeamSpec{
			Workload: info.Name,
			Factory: func(mm *machine.Machine) core.Workload {
				w := info.Factory(mm)
				built = append(built, w)
				return w
			},
			Policy: pol,
		}
	}
	res, err := core.RunCorunOn(m, mp, []core.TeamSpec{spec(a), spec(b)}, md)
	if err != nil {
		fmt.Fprintln(stderr, "fdtsim:", err)
		return 2
	}

	fmt.Fprintf(stdout, "corun      %s + %s (mapping %s)\n", a.Name, b.Name, res.Mapping)
	fmt.Fprintf(stdout, "policy     %s\n", pol.Name())
	fmt.Fprintf(stdout, "machine    %d cores\n", m.Cfg.Mem.Cores)
	fmt.Fprintf(stdout, "makespan   %d cycles\n", res.TotalCycles)
	fmt.Fprintf(stdout, "power      %.2f avg active cores (whole machine)\n", res.AvgActiveCores)
	fmt.Fprintf(stdout, "bus busy   %d cycles (%.1f%% of makespan)\n",
		res.BusBusyCycles, 100*float64(res.BusBusyCycles)/float64(res.TotalCycles))
	for _, t := range res.Teams {
		fmt.Fprintf(stdout, "team %-14s time=%-10d power=%-6.2f avgthreads=%-5.1f bus share=%.1f%%\n",
			t.Team, t.TotalCycles, t.AvgActiveCores, t.AvgThreads(), 100*t.BusShare)
		for _, k := range t.Kernels {
			d := k.Decision
			fmt.Fprintf(stdout, "  kernel %-20s threads=%-3d pcs=%-3d pbw=%-3d csfrac=%.3f%% bu1=%.2f%% train=%d iters (%d cyc) total=%d cyc\n",
				k.Kernel, d.Threads, d.PCS, d.PBW, 100*d.CSFraction, 100*d.BusUtil1, k.TrainIters, k.TrainCycles, k.Cycles)
		}
	}

	if dumpCtrs {
		fmt.Fprintf(stdout, "counters   %s\n", m.Ctrs)
	}
	if samples != nil {
		fmt.Fprintln(stdout, samples)
	}
	if ck != nil {
		fmt.Fprintf(stdout, "invariants %s\n", ck.Report())
		if err := ck.Err(); err != nil {
			fmt.Fprintln(stderr, "fdtsim:", err)
			return 1
		}
	}
	if verify {
		sampled := false
		for _, t := range res.Teams {
			if t.Sampled != nil {
				sampled = true
			}
		}
		if sampled {
			fmt.Fprintln(stdout, "verify     skipped (sampled run: extrapolated iterations compute no results)")
		} else {
			for _, w := range built {
				if v, ok := w.(workloads.Verifier); ok {
					if err := v.Verify(); err != nil {
						fmt.Fprintf(stdout, "verify     %s FAIL: %v\n", w.Name(), err)
						return 1
					}
					fmt.Fprintf(stdout, "verify     %s ok\n", w.Name())
				} else {
					fmt.Fprintf(stdout, "verify     %s (no verifier)\n", w.Name())
				}
			}
		}
	}
	return 0
}

// printList renders the full `fdtsim -list` inventory: workloads,
// synthetic extras, combinators, policies, mappings and execution
// modes.
func printList(stdout io.Writer) {
	fmt.Fprintln(stdout, "WORKLOADS (Table 2)")
	fmt.Fprintf(stdout, "  %-10s %-12s %-28s %s\n", "NAME", "CLASS", "PROBLEM", "INPUT")
	for _, info := range workloads.All() {
		fmt.Fprintf(stdout, "  %-10s %-12s %-28s %s\n", info.Name, info.Class, info.Problem, info.Input)
	}
	fmt.Fprintln(stdout, "\nEXTRAS (synthetic, outside Table 2)")
	for _, info := range workloads.Extras() {
		if strings.HasPrefix(info.Name, "gauntlet/") {
			continue
		}
		fmt.Fprintf(stdout, "  %-10s %-12s %-28s %s\n", info.Name, info.Class, info.Problem, info.Input)
	}
	fmt.Fprintln(stdout, "\nGAUNTLET (adversarial robustness family; run with -workload gauntlet/<member>)")
	for _, gm := range workloads.GauntletMembers() {
		fmt.Fprintf(stdout, "  %-18s breaks: %s\n", gm.Name, gm.Breaks)
	}
	fmt.Fprintln(stdout, "\nCOMBINATORS")
	fmt.Fprintf(stdout, "  %-10s %s\n", "corun", "co-schedule two workloads as concurrent teams: -corun a+b (e.g. pagemine+mg)")
	fmt.Fprintln(stdout, "\nPOLICIES (-policy)")
	for _, p := range [][2]string{
		{"sat", "synchronization-aware threading: Eq. 3 from trained critical-section time"},
		{"bat", "bandwidth-aware threading: Eq. 5 from trained bus utilization"},
		{"sat+bat", "combined FDT: min of both estimates, Eq. 7 (aliases: combined, fdt)"},
		{"static", "fixed thread count: -threads N (0 = all cores)"},
		{"hillclimb", "model-free baseline: times real chunks and climbs to a local optimum"},
		{"hybrid", "model seed + bounded measured probes, falls back to pure measurement on model breakdown"},
	} {
		fmt.Fprintf(stdout, "  %-10s %s\n", p[0], p[1])
	}
	fmt.Fprintln(stdout, "\nMAPPINGS (-mapping, with -corun)")
	for _, mp := range machine.Mappings() {
		fmt.Fprintf(stdout, "  %-10s %s\n", mp, mp.Describe())
	}
	fmt.Fprintln(stdout, "\nMODES")
	fmt.Fprintf(stdout, "  %-10s %s\n", "exact", "every cycle simulated (default)")
	fmt.Fprintf(stdout, "  %-10s %s\n", "sampled", "steady-state fast-forward: -sampled, tuned by -sample-tol/-sample-window")
}

func parsePolicy(name string, threads int) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "sat":
		return core.SAT{}, nil
	case "bat":
		return core.BAT{}, nil
	case "sat+bat", "combined", "fdt":
		return core.Combined{}, nil
	case "static":
		return core.Static{N: threads}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want sat, bat, sat+bat or static)", name)
	}
}
