// Command fdtsim runs one workload on the simulated 32-core CMP under
// one threading policy and prints a report: execution time, average
// active cores (the paper's power metric), per-kernel FDT decisions
// and the verification verdict.
//
// Usage:
//
//	fdtsim -workload pagemine -policy sat+bat
//	fdtsim -workload ed -policy static -threads 32
//	fdtsim -workload convert -policy bat -bandwidth 0.5
//	fdtsim -workload ed -policy bat -trace ed.trace.json
//	fdtsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/trace"
	"fdt/internal/workloads"
)

func main() {
	var (
		workload  = flag.String("workload", "pagemine", "workload name (see -list)")
		policy    = flag.String("policy", "sat+bat", "threading policy: sat, bat, sat+bat, static")
		threads   = flag.Int("threads", 0, "thread count for -policy static (0 = all cores)")
		cores     = flag.Int("cores", 32, "cores on the simulated chip")
		bandwidth = flag.Float64("bandwidth", 1.0, "off-chip bandwidth scale factor")
		verify    = flag.Bool("verify", true, "verify the workload's computed results")
		list      = flag.Bool("list", false, "list workloads and exit")
		dumpCtrs  = flag.Bool("counters", false, "dump the machine's counter set")
		sparkline = flag.Bool("sparkline", false, "sample the run and print bus/active-core sparklines")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in Perfetto)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-12s %-28s %s\n", "NAME", "CLASS", "PROBLEM", "INPUT")
		for _, info := range workloads.All() {
			fmt.Printf("%-10s %-12s %-28s %s\n", info.Name, info.Class, info.Problem, info.Input)
		}
		return
	}

	info, ok := workloads.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "fdtsim: unknown workload %q (try -list)\n", *workload)
		os.Exit(2)
	}
	pol, err := parsePolicy(*policy, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdtsim:", err)
		os.Exit(2)
	}

	cfg := machine.DefaultConfig().WithCores(*cores).WithBandwidth(*bandwidth)
	m := machine.MustNew(cfg)
	var samples *machine.SampleLog
	if *sparkline {
		samples = m.StartSampler(0)
	}
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(1<<19, trace.CatMem|trace.CatSync|trace.CatCtl)
		m.AttachTracer(tr)
	}
	w := info.Factory(m)
	res := core.NewController(pol).Run(m, w)

	fmt.Printf("workload   %s (%s)\n", res.Workload, info.Class)
	fmt.Printf("policy     %s\n", res.Policy)
	fmt.Printf("machine    %d cores, %.2gx bandwidth\n", *cores, *bandwidth)
	fmt.Printf("exec time  %d cycles\n", res.TotalCycles)
	fmt.Printf("power      %.2f avg active cores\n", res.AvgActiveCores)
	fmt.Printf("bus busy   %d cycles (%.1f%% of run)\n",
		res.BusBusyCycles, 100*float64(res.BusBusyCycles)/float64(res.TotalCycles))
	fmt.Printf("avgthreads %.1f\n", res.AvgThreads())
	for _, k := range res.Kernels {
		d := k.Decision
		fmt.Printf("kernel %-22s threads=%-3d pcs=%-3d pbw=%-3d csfrac=%.3f%% bu1=%.2f%% train=%d iters (%d cyc) total=%d cyc\n",
			k.Kernel, d.Threads, d.PCS, d.PBW, 100*d.CSFraction, 100*d.BusUtil1, k.TrainIters, k.TrainCycles, k.Cycles)
	}

	if *dumpCtrs {
		fmt.Printf("counters   %s\n", m.Ctrs)
	}
	if samples != nil {
		fmt.Println(samples)
	}
	if tr != nil {
		meta := map[string]string{
			"workload":     res.Workload,
			"policy":       res.Policy,
			"cores":        fmt.Sprintf("%d", *cores),
			"bandwidth":    fmt.Sprintf("%g", *bandwidth),
			"total_cycles": fmt.Sprintf("%d", res.TotalCycles),
		}
		if err := writeChromeFile(*traceOut, tr, meta); err != nil {
			fmt.Fprintln(os.Stderr, "fdtsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace      %d events (%d dropped) -> %s\n", tr.Len(), tr.Dropped(), *traceOut)
	}

	if *verify {
		if v, ok := w.(workloads.Verifier); ok {
			if err := v.Verify(); err != nil {
				fmt.Printf("verify     FAIL: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("verify     ok")
		} else {
			fmt.Println("verify     (workload has no verifier)")
		}
	}
}

func writeChromeFile(path string, tr *trace.Tracer, meta map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr, meta); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePolicy(name string, threads int) (core.Policy, error) {
	switch strings.ToLower(name) {
	case "sat":
		return core.SAT{}, nil
	case "bat":
		return core.BAT{}, nil
	case "sat+bat", "combined", "fdt":
		return core.Combined{}, nil
	case "static":
		return core.Static{N: threads}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want sat, bat, sat+bat or static)", name)
	}
}
