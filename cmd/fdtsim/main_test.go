package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListWorkloads(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"WORKLOADS", "NAME", "pagemine", "ed", "mtwister",
		"EXTRAS", "busburst", "phaseshift",
		"GAUNTLET", "gauntlet/oscillate", "gauntlet/csdep", "gauntlet/busstorm", "gauntlet/eqclash",
		"breaks: phases flip faster than the monitor interval",
		"COMBINATORS", "corun",
		"POLICIES", "sat+bat", "hillclimb", "hybrid",
		"MAPPINGS", "packed", "scattered", "smt",
		"MODES", "exact", "sampled",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
	// The gauntlet members print in their own section, not as extras.
	extras := out.String()[strings.Index(out.String(), "EXTRAS"):strings.Index(out.String(), "GAUNTLET")]
	if strings.Contains(extras, "gauntlet/") {
		t.Error("gauntlet members duplicated in the EXTRAS section")
	}
}

func TestBadInvocations(t *testing.T) {
	cases := [][]string{
		{"-workload", "nosuch"},
		{"-policy", "nosuch"},
		{"-nosuchflag"},
		{"-threads", "notanumber"},
		{"-corun", "nosuch+mg"},
		{"-corun", "pagemine"},
		{"-corun", "pagemine+mg", "-mapping", "nosuch"},
		{"-corun", "pagemine+mg", "-policy", "hillclimb"},
		{"-corun", "pagemine+mg", "-policy", "hybrid"},
		{"-corun", "pagemine+mg", "-mapping", "smt"}, // 1 SMT plane, 2 teams
		{"-probe-iters", "-1"},
		{"-min-gain", "1.5"},
		{"-min-gain", "-0.2"},
		{"-power-budget", "-1"},
		{"-freq-ladder", "notanumber"},
		{"-freq-ladder", "800,1600"}, // must be strictly descending
		{"-freq-ladder", "2000,2000"},
		{"-power-budget", "5", "-policy", "hillclimb"},
		{"-power-budget", "5", "-policy", "hybrid"},
		{"-power-budget", "5", "-corun", "pagemine+mg"},
		{"-freq-ladder", "default", "-corun", "pagemine+mg"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want exit 2; stderr: %s", args, code, errb.String())
		}
	}
}

func TestRunReportAndCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	var out, errb bytes.Buffer
	args := []string{"-workload", "pagemine", "-policy", "static", "-threads", "4",
		"-cores", "8", "-check", "-sparkline", "-counters"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"workload   pagemine", "exec time", "power",
		"invariants ok (", "verify     ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
}

func TestCorunReportAndCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated co-run")
	}
	var out, errb bytes.Buffer
	args := []string{"-corun", "pagemine+mg", "-mapping", "scattered",
		"-cores", "8", "-check", "-counters"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"corun      pagemine + mg (mapping scattered)",
		"makespan", "team t0:pagemine", "team t1:mg", "bus share",
		"invariants ok (", "verify     pagemine ok", "verify     mg ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("co-run report missing %q in:\n%s", want, out.String())
		}
	}
}

func TestHybridRunReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	var out, errb bytes.Buffer
	args := []string{"-workload", "gauntlet/oscillate", "-policy", "hybrid",
		"-cores", "8", "-probe-iters", "16", "-min-gain", "0.05"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"workload   gauntlet/oscillate", "policy     hybrid",
		"exec time", "verify     ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
	// The hybrid's probes always execute exactly, even under -sampled.
	out.Reset()
	errb.Reset()
	args = append(args, "-sampled")
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("-sampled exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "note: -policy hybrid forces exact execution") {
		t.Errorf("missing exact-execution note in:\n%s", out.String())
	}
}

func TestTraceOutputParses(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	path := filepath.Join(t.TempDir(), "out.trace.json")
	var out, errb bytes.Buffer
	args := []string{"-workload", "ed", "-policy", "static", "-threads", "2",
		"-cores", "8", "-trace", path}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("-trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("-trace output has no events")
	}
	if doc.OtherData["workload"] != "ed" {
		t.Errorf("trace metadata workload = %q, want \"ed\"", doc.OtherData["workload"])
	}
}

func TestPowerBudgetRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulated run")
	}
	var out, errb bytes.Buffer
	args := []string{"-workload", "ed", "-policy", "sat+bat", "-cores", "16",
		"-power-budget", "5.6", "-check"}
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"ladder f2000>f1600>f1200>f800, budget 5.60",
		"energy", "avg chip power, table-driven",
		"freq=f", "invariants ok (",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q in:\n%s", want, out.String())
		}
	}
}
