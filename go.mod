module fdt

go 1.22
