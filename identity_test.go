// Single-team bit-identity pin: the multi-team refactor must be
// provably behavior-preserving for N=1. Every Table-2 workload runs
// under {serial, SAT, BAT, adaptive} on a 16-core machine in exact
// mode, and the JSON-marshaled results must be byte-identical to the
// golden captured on the pre-refactor (PR 6) tree.
//
// Regenerate the golden ONLY when an intentional behavior change is
// being made (and say so in the PR):
//
//	go test -run TestSingleTeamBitIdentity -update-identity .
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fdt/internal/core"
	"fdt/internal/machine"
	"fdt/internal/workloads"
)

var updateIdentity = flag.Bool("update-identity", false,
	"regenerate testdata/identity_exact_16c.json from the current tree")

const identityGolden = "testdata/identity_exact_16c.json"

// identityRuns executes the pinned matrix: 12 workloads x {serial,
// SAT, BAT, adaptive SAT+BAT}, 16 cores, exact mode. Results flow
// through the same keyed entry points the experiments use, so the pin
// also covers the run-cache path.
func identityRuns() []core.RunResult {
	cfg := machine.DefaultConfig().WithCores(16)
	var out []core.RunResult
	for _, info := range workloads.All() {
		for _, pol := range []core.Policy{core.Static{N: 1}, core.SAT{}, core.BAT{}} {
			out = append(out, core.RunPolicyKeyed(cfg, info.Name, info.Factory, pol))
		}
		out = append(out, core.RunAdaptiveKeyed(cfg, info.Name, info.Factory,
			core.Combined{}, core.DefaultMonitorParams()))
	}
	return out
}

func TestSingleTeamBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("48 exact 16-core runs; skipped in -short")
	}
	got, err := json.MarshalIndent(identityRuns(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateIdentity {
		if err := os.MkdirAll(filepath.Dir(identityGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(identityGolden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", identityGolden, len(got))
		return
	}

	want, err := os.ReadFile(identityGolden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-identity once): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Locate the first diverging result for a readable failure.
	var gotRuns, wantRuns []core.RunResult
	if json.Unmarshal(got, &gotRuns) == nil && json.Unmarshal(want, &wantRuns) == nil {
		n := len(gotRuns)
		if len(wantRuns) < n {
			n = len(wantRuns)
		}
		for i := 0; i < n; i++ {
			g, _ := json.Marshal(gotRuns[i])
			w, _ := json.Marshal(wantRuns[i])
			if !bytes.Equal(g, w) {
				t.Fatalf("single-team run diverged from the PR 6 golden at %s/%s:\n got: %s\nwant: %s",
					gotRuns[i].Workload, gotRuns[i].Policy, g, w)
			}
		}
	}
	t.Fatalf("single-team results diverged from the PR 6 golden (%d vs %d bytes)", len(got), len(want))
}
